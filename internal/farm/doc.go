// Package farm distributes a sweep across a fleet of worker processes
// while keeping every observable byte-identical to a local run.
//
// # Shape
//
// A Coordinator owns one JobSpec — a serializable description from which
// any fleet member re-enumerates the identical []runner.Job list (the
// enumeration is deterministic, and the handshake cross-checks a
// fingerprint of it). Workers dial in over stdlib net/rpc (gob-encoded,
// one TCP connection per worker) and pull: each Lease hands out one job
// index under a deadline, the worker executes it through the unchanged
// runner/sim stack, and Complete streams the runner.Result row back.
// Because jobs travel as indices into a shared enumeration, no closure
// ever crosses the wire.
//
// # Why farm output is byte-identical to local -j N
//
// Three properties compose. (1) Every job is an independent deterministic
// simulation: its row depends only on the job, never on which worker ran
// it, when, or after how many retries. (2) The coordinator assembles
// results by job index and releases them in enumeration order — exactly
// the local pool's contract — so completion order, lease order and
// reassignment are all invisible. (3) The shipped artifacts (warmup
// snapshots, checkpoints) are machine snapshots, whose restore is
// observation-transparent by the differential gates. The formatters then
// render identical rows to identical bytes.
//
// # Content-addressed warmup shipping
//
// Jobs that declare a runner.WarmupSpec are deduplicated across the whole
// fleet, not just one process: the worker asks the coordinator for the
// snapshot by the content hash of its canonical runner.WarmupKey. The
// first asker is granted the build — it simulates the warmup once,
// uploads the snapshot, and every later asker (on any host) downloads it
// instead of re-simulating. N workers x M grid points therefore cost K
// warmup simulations, where K is the number of distinct keys.
//
// # Fault tolerance
//
// Leases expire — on a missed deadline, or immediately when the worker's
// connection drops — and the job returns to the queue for reassignment.
// Workers running a checkpoint-enabled farm upload interval snapshots of
// Measure jobs (sim.RunCheckpointed slices); a reassigned job resumes
// from its last validated checkpoint instead of cycle zero. Checkpoints
// are validated (snapshot envelope decode) before they replace the
// previous one, so a worker dying mid-upload can only lose progress,
// never corrupt it. Resume lands on the same absolute slice boundaries
// the uninterrupted run used, so the final machine — and the row — is
// unchanged.
//
// # Version locking
//
// Snapshot bytes are only meaningful between identical builds (the format
// is version-locked). The handshake therefore exchanges sim.SnapshotVersion
// and a VCS build hash both ways and rejects mismatched fleets with a
// clear error before any job, snapshot or checkpoint moves.
package farm
