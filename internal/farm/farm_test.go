package farm

import (
	"bytes"
	"net/rpc"
	"testing"
	"time"

	"mcmsim/internal/conformance"
	"mcmsim/internal/runner"
	"mcmsim/internal/sim"
)

// renderLocal runs the spec on the classic in-process pool (with the
// snapshot cache, like cmd/sweep's default) and renders it in the given
// format — the byte-reference every farm test compares against.
func renderLocal(t *testing.T, spec JobSpec, workers int, format string) []byte {
	t.Helper()
	if err := ApplyGlobals(spec); err != nil {
		t.Fatal(err)
	}
	jobs, err := Enumerate(spec)
	if err != nil {
		t.Fatal(err)
	}
	results := runner.Run(jobs, runner.Options{Workers: workers, WarmupCache: runner.NewWarmupCache()})
	return render(t, results, format)
}

func render(t *testing.T, results []runner.Result, format string) []byte {
	t.Helper()
	rows, err := runner.Rows(results)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := runner.WriteReport(&buf, format, []runner.Table{{Name: "farm", Rows: rows}}); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestFarmSuiteByteIdentical is the headline gate: a coordinator plus two
// loopback workers — checkpointing enabled, warmups shipped over the wire
// — renders the exact bytes of a local -j 2 run, in every output format.
func TestFarmSuiteByteIdentical(t *testing.T) {
	spec := JobSpec{Kind: "sweep", Exps: []string{"equalization", "warmequal"}, Procs: 3, Seed: 7}
	results, stats, err := Run(spec, Options{LocalWorkers: 2, CheckpointEvery: 5000})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Completed != stats.Jobs {
		t.Fatalf("completed %d of %d jobs", stats.Completed, stats.Jobs)
	}
	for _, format := range []string{runner.FormatTable, runner.FormatJSON, runner.FormatCSV} {
		farm := render(t, results, format)
		local := renderLocal(t, spec, 2, format)
		if !bytes.Equal(farm, local) {
			t.Errorf("%s output differs:\n--- farm ---\n%s--- local -j 2 ---\n%s", format, farm, local)
		}
	}
}

// TestFarmWarmupDedup asserts the content-addressed warmup store costs
// exactly one warmup simulation per distinct key across the whole fleet:
// the warmequal sweep's 8 jobs share one key, and with two workers racing
// for it the coordinator must still grant a single build.
func TestFarmWarmupDedup(t *testing.T) {
	spec := JobSpec{Kind: "sweep", Exps: []string{"warmequal"}, Procs: 3, Seed: 7}
	if err := ApplyGlobals(spec); err != nil {
		t.Fatal(err)
	}
	jobs, err := Enumerate(spec)
	if err != nil {
		t.Fatal(err)
	}
	warmJobs := 0
	for _, j := range jobs {
		if j.Warmup != nil {
			warmJobs++
		}
	}
	if warmJobs < 2 {
		t.Fatalf("warmequal has %d warm jobs; the dedup assertion needs at least 2", warmJobs)
	}
	results, stats, err := Run(spec, Options{LocalWorkers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := runner.Rows(results); err != nil {
		t.Fatal(err)
	}
	if stats.WarmKeys != 1 {
		t.Errorf("warmequal requested %d distinct warmup keys, want 1", stats.WarmKeys)
	}
	if stats.WarmBuilds != stats.WarmKeys {
		t.Errorf("fleet simulated %d warmup builds for %d keys; want exactly one per key",
			stats.WarmBuilds, stats.WarmKeys)
	}
	if stats.WarmBuilds >= warmJobs {
		t.Errorf("no dedup: %d builds for %d warm jobs", stats.WarmBuilds, warmJobs)
	}
}

// TestFarmConformParity runs a conformance batch through the farm and
// asserts the reassembled report renders byte-identically to the local
// CheckBatch path (wall time omitted — the one nondeterministic field).
func TestFarmConformParity(t *testing.T) {
	spec := JobSpec{Kind: "conform", CSeed: 1, N: 4, Quick: true}
	params, opts, err := ConformOptions(spec)
	if err != nil {
		t.Fatal(err)
	}

	results, _, err := Run(spec, Options{LocalWorkers: 2})
	if err != nil {
		t.Fatal(err)
	}
	farmRep := conformance.BatchReport(spec.CSeed, spec.N, params, results)
	var farmOut bytes.Buffer
	farmOK := conformance.Summarize(&farmOut, farmRep, spec.CSeed, spec.N, opts, -1)

	localRep := conformance.CheckBatch(spec.CSeed, spec.N, params, 2, opts, nil)
	var localOut bytes.Buffer
	localOK := conformance.Summarize(&localOut, localRep, spec.CSeed, spec.N, opts, -1)

	if farmOK != localOK {
		t.Errorf("farm verdict %v, local verdict %v", farmOK, localOK)
	}
	if !bytes.Equal(farmOut.Bytes(), localOut.Bytes()) {
		t.Errorf("conform reports differ:\n--- farm ---\n%s--- local ---\n%s", farmOut.Bytes(), localOut.Bytes())
	}
	if !localOK {
		t.Errorf("conformance batch unexpectedly dirty:\n%s", localOut.Bytes())
	}
}

// dialCoord starts a coordinator on loopback and returns a raw RPC client
// to it, for handshake- and protocol-level tests.
func dialCoord(t *testing.T, spec JobSpec, ttl time.Duration, every uint64) (*Coordinator, *rpc.Client) {
	t.Helper()
	coord, err := NewCoordinator(spec, ttl, every)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(coord.Stop)
	ln, err := coord.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	client, err := rpc.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { client.Close() })
	return coord, client
}

// TestFarmHandshakeVersionMismatch asserts a mismatched fleet member is
// rejected at Hello — before any job, snapshot or checkpoint moves — with
// an error naming the disagreeing version.
func TestFarmHandshakeVersionMismatch(t *testing.T) {
	spec := JobSpec{Kind: "sweep", Exps: []string{"equalization"}, Procs: 3, Seed: 7}

	cases := []struct {
		name string
		prep func(c *Coordinator, h *Hello)
		want string
	}{
		{"snapshot", func(c *Coordinator, h *Hello) { h.Snapshot++ }, "snapshot format"},
		{"protocol", func(c *Coordinator, h *Hello) { h.Protocol++ }, "farm protocol"},
		{"build", func(c *Coordinator, h *Hello) {
			c.build = "rev-coordinator"
			h.Build = "rev-worker"
		}, "build rev-worker vs rev-coordinator"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			coord, client := dialCoord(t, spec, 0, 0)
			h := Hello{Protocol: ProtocolVersion, Snapshot: sim.SnapshotVersion, Build: "", Worker: "mismatched"}
			tc.prep(coord, &h)
			var w Welcome
			err := client.Call("Farm.Hello", h, &w)
			if err == nil {
				t.Fatalf("%s mismatch accepted", tc.name)
			}
			if !bytes.Contains([]byte(err.Error()), []byte(tc.want)) {
				t.Errorf("error %q does not name the mismatch (want substring %q)", err, tc.want)
			}
			// The rejected connection must not be able to lease anyway.
			var lr LeaseReply
			if err := client.Call("Farm.Lease", LeaseArgs{}, &lr); err == nil {
				t.Error("lease granted to a connection that failed the handshake")
			}
		})
	}
}

// TestFarmFingerprintMismatch asserts a worker whose enumeration diverges
// from the coordinator's is refused work.
func TestFarmFingerprintMismatch(t *testing.T) {
	spec := JobSpec{Kind: "sweep", Exps: []string{"equalization"}, Procs: 3, Seed: 7}
	_, client := dialCoord(t, spec, 0, 0)
	var w Welcome
	if err := client.Call("Farm.Hello", Hello{Protocol: ProtocolVersion, Snapshot: sim.SnapshotVersion, Worker: "divergent"}, &w); err != nil {
		t.Fatal(err)
	}
	var lr LeaseReply
	err := client.Call("Farm.Lease", LeaseArgs{Fingerprint: "not-the-fingerprint"}, &lr)
	if err == nil {
		t.Fatal("divergent fingerprint was leased a job")
	}
	if !bytes.Contains([]byte(err.Error()), []byte("fingerprint mismatch")) {
		t.Errorf("error %q does not name the fingerprint mismatch", err)
	}
}
