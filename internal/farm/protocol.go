package farm

import (
	"bytes"
	"fmt"
	"runtime/debug"
	"time"

	"mcmsim/internal/runner"
	"mcmsim/internal/sim"
	"mcmsim/internal/snapshot"
)

// ProtocolVersion is the farm wire protocol. Bumped on any change to the
// RPC argument or reply types; mixed fleets are rejected at handshake.
const ProtocolVersion = 1

// Hello is the worker's side of the handshake, sent as the first call on a
// new connection. The coordinator validates it before anything else moves.
type Hello struct {
	Protocol int    // ProtocolVersion of the worker's build
	Snapshot int    // sim.SnapshotVersion of the worker's build
	Build    string // BuildHash of the worker's binary ("" if unstamped)
	Worker   string // display name for logs and stats
}

// Welcome is the coordinator's side of the handshake. It carries the same
// version triple (so the worker can reject an incompatible coordinator
// symmetrically) plus everything the worker needs to reproduce the job
// list: the serialized spec and the coordinator's enumeration fingerprint.
type Welcome struct {
	Protocol int
	Snapshot int
	Build    string

	Spec        JobSpec
	Jobs        int    // number of jobs the coordinator enumerated
	Fingerprint string // Fingerprint(spec, jobs); the worker must reproduce it

	LeaseTTL        time.Duration // leases expire this long after grant/renew
	CheckpointEvery uint64        // cycles between checkpoints; 0 = no checkpointing
}

// LeaseArgs requests one job. The fingerprint repeats on every lease so a
// worker that somehow enumerated a divergent job list can never be handed
// work, even past the handshake.
type LeaseArgs struct {
	Fingerprint string
}

// LeaseReply grants a job, asks the worker to wait, or ends the session.
type LeaseReply struct {
	Done bool // every job is complete; the worker should exit
	Wait bool // nothing leasable right now; retry shortly

	Job int    // job index into the shared enumeration
	Seq uint64 // lease sequence number; quote it on Renew/Checkpoint/Complete

	// Checkpoint, when non-nil, is a mid-flight machine snapshot of this
	// job from a previous lease; the worker resumes from it instead of
	// starting at cycle zero. Absent for opaque (Run) jobs, which restart.
	Checkpoint []byte
	// CheckpointCycle is the snapshot's absolute cycle, for logs.
	CheckpointCycle uint64
}

// RenewArgs extends a lease's deadline (the worker heartbeats at TTL/3).
type RenewArgs struct {
	Job int
	Seq uint64
}

// RenewReply reports whether the lease is still held. Held=false means the
// coordinator reassigned the job; the worker must abandon it.
type RenewReply struct {
	Held bool
}

// WarmupArgs asks for the warmup snapshot with the given content key
// (runner.WarmupKey of the job's warmup spec).
type WarmupArgs struct {
	Key string
}

// WarmupReply is one round of the warmup-fetch poll. One of four states:
// the snapshot is ready (Snapshot non-nil), the build failed fleet-wide
// (Error non-empty, propagated to every asker), the asker is granted the
// build (Build true — simulate the warmup and PutWarmup the result), or
// another worker is building it (all zero — re-ask shortly).
type WarmupReply struct {
	Snapshot []byte
	Build    bool
	Error    string
}

// PutWarmupArgs uploads a built warmup snapshot (or the build's failure).
type PutWarmupArgs struct {
	Key      string
	Snapshot []byte
	Error    string // non-empty: the build failed; propagated to every asker
}

// CheckpointArgs uploads a mid-flight snapshot of a leased job.
type CheckpointArgs struct {
	Job      int
	Seq      uint64
	Cycle    uint64 // absolute machine cycle of the snapshot
	Snapshot []byte
}

// CheckpointReply acknowledges a checkpoint. Held=false means the lease
// was lost (the job is someone else's now); the worker must abandon it.
type CheckpointReply struct {
	Held bool
}

// WireResult is runner.Result in wire-safe form (error flattened to its
// message; an error crossing the farm boundary compares by text anyway).
type WireResult struct {
	Name  string
	Row   runner.Row
	Err   string
	Wall  time.Duration
	Cycle uint64 // the row's simulated cycles, for progress reporting
}

// CompleteArgs delivers a finished job's result.
type CompleteArgs struct {
	Job    int
	Seq    uint64
	Result WireResult
}

// CompleteReply acknowledges a completion. Accepted=false means the lease
// was stale (the job was reassigned and another worker's result counts).
type CompleteReply struct {
	Accepted bool
}

// StatsReply is a snapshot of the coordinator's counters (the Stats RPC,
// used by tests and the sweepd status line).
type StatsReply struct {
	Stats Stats
}

// BuildHash identifies the running binary by its VCS revision, with a
// "+dirty" suffix for modified trees. Unstamped builds (go test, go run
// outside a stamped module) return "" — the handshake then skips the
// build comparison, since "" carries no information.
func BuildHash() string {
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return ""
	}
	var rev, dirty string
	for _, s := range info.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			if s.Value == "true" {
				dirty = "+dirty"
			}
		}
	}
	if rev == "" {
		return ""
	}
	return rev + dirty
}

// compatible rejects a fleet member whose build cannot interoperate:
// differing wire protocol, differing snapshot format (snapshot bytes would
// be misread — refused before any deserialization is attempted), or
// differing VCS builds (same formats, but simulations could diverge and
// silently break byte-identity). Builds compare only when both sides are
// stamped; "" means unstamped, not "matches anything stamped".
func compatible(protocol, snapVersion int, build, selfBuild string) error {
	if protocol != ProtocolVersion {
		return fmt.Errorf("farm protocol v%d vs v%d", protocol, ProtocolVersion)
	}
	if snapVersion != sim.SnapshotVersion {
		return fmt.Errorf("snapshot format v%d vs v%d (mixed builds cannot exchange warmup snapshots or checkpoints)",
			snapVersion, sim.SnapshotVersion)
	}
	if build != "" && selfBuild != "" && build != selfBuild {
		return fmt.Errorf("build %s vs %s (mixed-revision fleets can diverge silently)", build, selfBuild)
	}
	return nil
}

// encodeMachine serializes a machine snapshot in the versioned on-disk
// framing, so both ends validate magic and format version on decode.
func encodeMachine(m *snapshot.Machine) ([]byte, error) {
	var buf bytes.Buffer
	if err := snapshot.Write(&buf, m); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// decodeMachine validates and decodes a shipped snapshot.
func decodeMachine(b []byte) (*snapshot.Machine, error) {
	return snapshot.Read(bytes.NewReader(b))
}

// toWire flattens a runner.Result for transport.
func toWire(r runner.Result) WireResult {
	w := WireResult{Name: r.Name, Row: r.Row, Wall: r.Wall, Cycle: r.Row.Cycles}
	if r.Err != nil {
		w.Err = r.Err.Error()
	}
	return w
}

// fromWire inverts toWire.
func fromWire(w WireResult) runner.Result {
	r := runner.Result{Name: w.Name, Row: w.Row, Wall: w.Wall}
	if w.Err != "" {
		r.Err = fmt.Errorf("%s", w.Err)
	}
	return r
}
