package farm

import (
	"fmt"
	"net"
	"net/rpc"
	"sync"
)

// session is one worker connection's view of the coordinator, registered
// as the "Farm" RPC service on a per-connection rpc.Server. Tying the
// service object to the connection is what makes failure detection cheap:
// when ServeConn returns (hangup, reset, shutdown), close releases every
// lease and warmup build the connection held, immediately — the lease TTL
// only covers workers that stall while keeping their socket open.
type session struct {
	coord *Coordinator
	name  string

	mu      sync.Mutex
	held    map[int]bool // job indices this connection is leasing
	greeted bool
}

func (s *session) hold(i int) {
	s.mu.Lock()
	s.held[i] = true
	s.mu.Unlock()
}

func (s *session) drop(i int) {
	s.mu.Lock()
	delete(s.held, i)
	s.mu.Unlock()
}

// close releases the session's leases back to the queue and re-opens its
// unfinished warmup builds so a waiting asker is promoted to builder.
func (s *session) close() {
	s.mu.Lock()
	held := make([]int, 0, len(s.held))
	for i := range s.held {
		held = append(held, i)
	}
	s.held = map[int]bool{}
	s.mu.Unlock()

	c := s.coord
	c.mu.Lock()
	for _, i := range held {
		if c.state[i].owner == s && c.state[i].status == jobLeased {
			c.releaseLocked(i)
		}
	}
	c.releaseWarmBuildsLocked(s)
	c.mu.Unlock()
}

// Hello validates the worker's build and returns the spec. Every other
// method refuses to serve a connection that has not completed it.
func (s *session) Hello(h Hello, reply *Welcome) error {
	if err := compatible(h.Protocol, h.Snapshot, h.Build, s.coord.build); err != nil {
		return fmt.Errorf("farm: worker %q rejected: %w", h.Worker, err)
	}
	s.mu.Lock()
	s.greeted = true
	s.name = h.Worker
	s.mu.Unlock()
	s.coord.mu.Lock()
	s.coord.stats.Workers++
	s.coord.mu.Unlock()
	*reply = s.coord.welcome()
	return nil
}

func (s *session) ready() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.greeted {
		return fmt.Errorf("farm: handshake required before any other call")
	}
	return nil
}

// Lease grants one job (or Wait/Done).
func (s *session) Lease(a LeaseArgs, reply *LeaseReply) error {
	if err := s.ready(); err != nil {
		return err
	}
	r, err := s.coord.lease(s, a.Fingerprint)
	if err != nil {
		return err
	}
	*reply = r
	return nil
}

// Renew extends a lease's deadline.
func (s *session) Renew(a RenewArgs, reply *RenewReply) error {
	if err := s.ready(); err != nil {
		return err
	}
	reply.Held = s.coord.renew(s, a.Job, a.Seq)
	return nil
}

// Checkpoint uploads a mid-flight snapshot of a leased job.
func (s *session) Checkpoint(a CheckpointArgs, reply *CheckpointReply) error {
	if err := s.ready(); err != nil {
		return err
	}
	reply.Held = s.coord.checkpoint(s, a)
	return nil
}

// Complete delivers a finished job's result.
func (s *session) Complete(a CompleteArgs, reply *CompleteReply) error {
	if err := s.ready(); err != nil {
		return err
	}
	reply.Accepted = s.coord.complete(s, a)
	return nil
}

// Warmup is one poll round of the content-addressed warmup fetch.
func (s *session) Warmup(a WarmupArgs, reply *WarmupReply) error {
	if err := s.ready(); err != nil {
		return err
	}
	*reply = s.coord.warmup(s, a.Key)
	return nil
}

// PutWarmup uploads a built warmup snapshot.
func (s *session) PutWarmup(a PutWarmupArgs, reply *struct{}) error {
	if err := s.ready(); err != nil {
		return err
	}
	return s.coord.putWarmup(s, a)
}

// Stats reports the coordinator's counters.
func (s *session) Stats(a struct{}, reply *StatsReply) error {
	reply.Stats = s.coord.Stats()
	return nil
}

// Serve accepts worker connections on ln until the listener closes. Each
// connection gets its own session and rpc.Server; the call blocks, so run
// it in a goroutine and close ln to stop accepting.
func (c *Coordinator) Serve(ln net.Listener) {
	var wg sync.WaitGroup
	for {
		conn, err := ln.Accept()
		if err != nil {
			break // listener closed
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			c.mu.Lock()
			c.sessions++
			c.mu.Unlock()
			sess := &session{coord: c, held: map[int]bool{}}
			srv := rpc.NewServer()
			// The method set is exactly the wire protocol; no error to check.
			_ = srv.RegisterName("Farm", sess)
			srv.ServeConn(conn)
			sess.close()
			c.mu.Lock()
			c.sessions--
			c.mu.Unlock()
		}()
	}
	wg.Wait()
}

// Listen starts serving on addr (":0" for an ephemeral test port) and
// returns the listener; close it to stop accepting.
func (c *Coordinator) Listen(addr string) (net.Listener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	go c.Serve(ln)
	return ln, nil
}
