package farm

import (
	"fmt"
	"sync"
	"time"

	"mcmsim/internal/runner"
	"mcmsim/internal/sim"
)

// Stats are the coordinator's counters. They describe scheduling, never
// results: two runs of the same spec may lease, reassign and resume
// differently while producing byte-identical reports.
type Stats struct {
	Jobs      int // jobs in the enumeration
	Completed int // accepted results
	Workers   int // handshakes accepted

	Leases         int // grants, initial and reassigned
	Reassigned     int // leases released by expiry or worker hangup
	Resumed        int // reassigned leases granted with a checkpoint
	StaleCompletes int // results refused because the lease had been reassigned

	Checkpoints         int // checkpoint uploads accepted
	CheckpointsRejected int // refused: corrupt snapshot or stale lease

	WarmKeys    int // distinct warmup keys requested
	WarmBuilds  int // build grants handed out (== WarmKeys when no builder died)
	WarmFetches int // warmup snapshot downloads served
}

// job lease states.
const (
	jobPending = iota
	jobLeased
	jobDone
)

type jobState struct {
	status   int
	seq      uint64 // current lease's sequence number
	deadline time.Time
	owner    *session

	checkpoint []byte // latest validated mid-flight snapshot, nil if none
	ckCycle    uint64
}

// warmState is one warmup key's fleet-wide build: granted to the first
// asker, re-granted if that asker's session dies before uploading.
type warmState struct {
	builder *session
	done    bool
	snap    []byte
	err     string
}

// Coordinator owns one spec's execution across a worker fleet: the lease
// table, the checkpoint store, the warmup store, and the result slots.
// Safe for concurrent use by the per-connection RPC sessions.
type Coordinator struct {
	spec        JobSpec
	jobs        []runner.Job
	fingerprint string
	build       string

	ttl   time.Duration
	every uint64

	// OnProgress, if set before Serve, observes accepted completions in
	// completion order (like runner.Options.OnProgress, and with the same
	// caveat: completion order is not deterministic).
	OnProgress func(runner.Progress)

	mu        sync.Mutex
	state     []jobState
	results   []runner.Result
	completed int
	seq       uint64
	warm      map[string]*warmState
	stats     Stats
	sessions  int // currently connected workers
	done      chan struct{}

	janitorStop chan struct{}
}

// DefaultLeaseTTL is generous: expiry exists for workers that vanish
// without closing their connection (a hangup releases leases immediately).
const DefaultLeaseTTL = time.Minute

// NewCoordinator enumerates the spec locally and prepares to serve it.
// leaseTTL <= 0 selects DefaultLeaseTTL; checkpointEvery is the interval
// (in simulated cycles) workers snapshot Measure jobs at, 0 to disable.
func NewCoordinator(spec JobSpec, leaseTTL time.Duration, checkpointEvery uint64) (*Coordinator, error) {
	if err := ApplyGlobals(spec); err != nil {
		return nil, err
	}
	jobs, err := Enumerate(spec)
	if err != nil {
		return nil, err
	}
	if len(jobs) == 0 {
		return nil, fmt.Errorf("farm: spec enumerates no jobs")
	}
	if leaseTTL <= 0 {
		leaseTTL = DefaultLeaseTTL
	}
	c := &Coordinator{
		spec:        spec,
		jobs:        jobs,
		fingerprint: Fingerprint(spec, jobs),
		build:       BuildHash(),
		ttl:         leaseTTL,
		every:       checkpointEvery,
		state:       make([]jobState, len(jobs)),
		results:     make([]runner.Result, len(jobs)),
		warm:        make(map[string]*warmState),
		done:        make(chan struct{}),
		janitorStop: make(chan struct{}),
	}
	c.stats.Jobs = len(jobs)
	go c.janitor()
	return c, nil
}

// janitor expires overdue leases. Connection hangups release leases
// immediately (see session.close); the janitor covers workers that stall
// while keeping their TCP connection alive.
func (c *Coordinator) janitor() {
	tick := time.NewTicker(c.ttl / 4)
	defer tick.Stop()
	for {
		select {
		case <-c.janitorStop:
			return
		case now := <-tick.C:
			c.mu.Lock()
			for i := range c.state {
				st := &c.state[i]
				if st.status == jobLeased && now.After(st.deadline) {
					c.releaseLocked(i)
				}
			}
			c.mu.Unlock()
		}
	}
}

// releaseLocked returns a leased job to the queue (lease expiry or owner
// hangup) and re-grants any warmup build its owner held. Caller holds mu.
func (c *Coordinator) releaseLocked(i int) {
	st := &c.state[i]
	if st.owner != nil {
		st.owner.drop(i)
	}
	st.status = jobPending
	st.owner = nil
	c.stats.Reassigned++
}

// releaseWarmBuildsLocked re-opens every unfinished warmup build owned by
// a dead session, so the next asker is promoted to builder instead of
// polling forever. Caller holds mu.
func (c *Coordinator) releaseWarmBuildsLocked(s *session) {
	for _, w := range c.warm {
		if !w.done && w.builder == s {
			w.builder = nil
		}
	}
}

// Jobs returns the enumerated job count.
func (c *Coordinator) Jobs() int { return len(c.jobs) }

// Spec returns the coordinator's spec.
func (c *Coordinator) Spec() JobSpec { return c.spec }

// Done is closed once every job has an accepted result.
func (c *Coordinator) Done() <-chan struct{} { return c.done }

// Results blocks until every job completed and returns the results in
// enumeration order — the exact contract of runner.Run, which is what
// makes farm output byte-identical to the in-process pool.
func (c *Coordinator) Results() []runner.Result {
	<-c.done
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.results
}

// Stats returns a snapshot of the counters.
func (c *Coordinator) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Stop terminates the janitor. Serving sessions drain on their own when
// their connections close.
func (c *Coordinator) Stop() {
	close(c.janitorStop)
}

// WaitIdle waits (up to the timeout) for every worker connection to
// close. Called after Done so workers observe the farm's completion —
// their final Lease returns Done and they disconnect cleanly — before
// the coordinator process tears the sockets down under them.
func (c *Coordinator) WaitIdle(timeout time.Duration) {
	deadline := time.Now().Add(timeout)
	for {
		c.mu.Lock()
		n := c.sessions
		c.mu.Unlock()
		if n == 0 || time.Now().After(deadline) {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// welcome builds the handshake reply (after compat validation).
func (c *Coordinator) welcome() Welcome {
	return Welcome{
		Protocol:        ProtocolVersion,
		Snapshot:        sim.SnapshotVersion,
		Build:           c.build,
		Spec:            c.spec,
		Jobs:            len(c.jobs),
		Fingerprint:     c.fingerprint,
		LeaseTTL:        c.ttl,
		CheckpointEvery: c.every,
	}
}

// lease grants the lowest pending job to s, or reports Wait/Done.
func (c *Coordinator) lease(s *session, fingerprint string) (LeaseReply, error) {
	if fingerprint != c.fingerprint {
		return LeaseReply{}, fmt.Errorf("farm: enumeration fingerprint mismatch (worker %s vs coordinator %s); divergent job lists cannot share indices",
			short(fingerprint), short(c.fingerprint))
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.completed == len(c.jobs) {
		return LeaseReply{Done: true}, nil
	}
	for i := range c.state {
		st := &c.state[i]
		if st.status != jobPending {
			continue
		}
		c.seq++
		st.status = jobLeased
		st.seq = c.seq
		st.deadline = time.Now().Add(c.ttl)
		st.owner = s
		s.hold(i)
		c.stats.Leases++
		reply := LeaseReply{Job: i, Seq: st.seq}
		if st.checkpoint != nil {
			reply.Checkpoint = st.checkpoint
			reply.CheckpointCycle = st.ckCycle
			c.stats.Resumed++
		}
		return reply, nil
	}
	return LeaseReply{Wait: true}, nil
}

// renew extends the lease if s still holds it.
func (c *Coordinator) renew(s *session, job int, seq uint64) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.heldLocked(s, job, seq) {
		return false
	}
	c.state[job].deadline = time.Now().Add(c.ttl)
	return true
}

// heldLocked reports whether s currently holds the (job, seq) lease.
func (c *Coordinator) heldLocked(s *session, job int, seq uint64) bool {
	if job < 0 || job >= len(c.state) {
		return false
	}
	st := &c.state[job]
	return st.status == jobLeased && st.seq == seq && st.owner == s
}

// checkpoint stores a mid-flight snapshot for a leased job. The snapshot
// is validated (framing, format version) before it replaces the previous
// one: a worker dying mid-upload truncates the payload, and a truncated
// payload must lose progress, never poison the resume path.
func (c *Coordinator) checkpoint(s *session, a CheckpointArgs) bool {
	valid := true
	if _, err := decodeMachine(a.Snapshot); err != nil {
		valid = false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.heldLocked(s, a.Job, a.Seq) {
		c.stats.CheckpointsRejected++
		return false
	}
	if !valid {
		c.stats.CheckpointsRejected++
		return true // lease is fine; only this upload is refused
	}
	st := &c.state[a.Job]
	st.checkpoint = a.Snapshot
	st.ckCycle = a.Cycle
	st.deadline = time.Now().Add(c.ttl) // an upload is as good as a heartbeat
	c.stats.Checkpoints++
	return true
}

// complete records a finished job if the lease is still current.
func (c *Coordinator) complete(s *session, a CompleteArgs) bool {
	c.mu.Lock()
	if !c.heldLocked(s, a.Job, a.Seq) {
		c.stats.StaleCompletes++
		c.mu.Unlock()
		return false
	}
	st := &c.state[a.Job]
	st.status = jobDone
	st.owner = nil
	st.checkpoint = nil
	s.drop(a.Job)
	c.results[a.Job] = fromWire(a.Result)
	c.completed++
	c.stats.Completed++
	allDone := c.completed == len(c.jobs)
	if c.OnProgress != nil {
		// Called under the lock so calls are serialized, like the pool's
		// OnProgress contract. The callback must not call back into the
		// coordinator (it is a print hook).
		p := runner.Progress{
			Done:   c.completed,
			Total:  len(c.jobs),
			Name:   a.Result.Name,
			Cycles: a.Result.Cycle,
			Wall:   a.Result.Wall,
		}
		if a.Result.Err != "" {
			p.Err = fmt.Errorf("%s", a.Result.Err)
		}
		c.OnProgress(p)
	}
	c.mu.Unlock()
	if allDone {
		close(c.done)
	}
	return true
}

// warmup runs one poll round of the warmup-fetch protocol for s.
func (c *Coordinator) warmup(s *session, key string) WarmupReply {
	c.mu.Lock()
	defer c.mu.Unlock()
	w, ok := c.warm[key]
	if !ok {
		w = &warmState{}
		c.warm[key] = w
		c.stats.WarmKeys++
	}
	if w.done {
		if w.err != "" {
			// The build failed deterministically on the builder; propagate
			// the same error to every asker, exactly like the in-process
			// cache propagates its builder's error to every waiter.
			return WarmupReply{Error: w.err}
		}
		c.stats.WarmFetches++
		return WarmupReply{Snapshot: w.snap}
	}
	if w.builder == nil {
		w.builder = s
		c.stats.WarmBuilds++
		return WarmupReply{Build: true}
	}
	return WarmupReply{} // someone is building; poll again
}

// putWarmup stores a built warmup snapshot (validated like checkpoints).
func (c *Coordinator) putWarmup(s *session, a PutWarmupArgs) error {
	if a.Error == "" {
		if _, err := decodeMachine(a.Snapshot); err != nil {
			return fmt.Errorf("farm: warmup snapshot for key %s rejected: %w", short(a.Key), err)
		}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	w, ok := c.warm[a.Key]
	if !ok || w.builder != s || w.done {
		return fmt.Errorf("farm: warmup upload for key %s without a build grant", short(a.Key))
	}
	w.done = true
	w.snap = a.Snapshot
	w.err = a.Error
	return nil
}

// short abbreviates a key or fingerprint for error messages.
func short(s string) string {
	if len(s) > 12 {
		return s[:12] + "…"
	}
	return s
}
