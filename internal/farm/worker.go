package farm

import (
	"errors"
	"fmt"
	"net/rpc"
	"sync"
	"sync/atomic"
	"time"

	"mcmsim/internal/runner"
	"mcmsim/internal/sim"
	"mcmsim/internal/snapshot"
)

// leaseWaitBackoff is how long a worker sleeps when the coordinator has
// every remaining job leased out (or a warmup is being built elsewhere).
const leaseWaitBackoff = 10 * time.Millisecond

// Worker executes leased jobs against one coordinator. The zero value
// plus a name is ready; Run does the rest.
type Worker struct {
	// Name labels the worker in coordinator stats and error messages.
	Name string

	// CheckpointHook, if non-nil, runs after every accepted checkpoint
	// upload with the job index and the snapshot's absolute cycle. A
	// non-nil error abandons the job and terminates the worker with that
	// error — the fault-injection tests use it to simulate a worker dying
	// right after (or instead of) a checkpoint.
	CheckpointHook func(job int, cycle uint64) error
}

// Run connects to the coordinator at addr, performs the handshake, and
// pulls jobs until the farm reports Done. It returns nil on a drained
// farm and an error on incompatibility, a divergent enumeration, or a
// connection failure.
func (w *Worker) Run(addr string) error {
	client, err := rpc.Dial("tcp", addr)
	if err != nil {
		return fmt.Errorf("farm: worker %s: dial %s: %w", w.Name, addr, err)
	}
	defer client.Close()
	return w.run(client)
}

// run is Run minus the dialing, for tests that inject a connection.
func (w *Worker) run(client *rpc.Client) error {
	var welcome Welcome
	hello := Hello{
		Protocol: ProtocolVersion,
		Snapshot: sim.SnapshotVersion,
		Build:    BuildHash(),
		Worker:   w.Name,
	}
	if err := client.Call("Farm.Hello", hello, &welcome); err != nil {
		return err
	}
	// Symmetric check: an old coordinator must be rejected by a new worker
	// just as firmly as the reverse.
	if err := compatible(welcome.Protocol, welcome.Snapshot, welcome.Build, hello.Build); err != nil {
		return fmt.Errorf("farm: worker %s: coordinator rejected: %w", w.Name, err)
	}
	if err := ApplyGlobals(welcome.Spec); err != nil {
		return err
	}
	jobs, err := Enumerate(welcome.Spec)
	if err != nil {
		return err
	}
	fp := Fingerprint(welcome.Spec, jobs)
	if len(jobs) != welcome.Jobs || fp != welcome.Fingerprint {
		return fmt.Errorf("farm: worker %s: enumerated %d jobs with fingerprint %s, coordinator has %d with %s — divergent builds or spec drift",
			w.Name, len(jobs), short(fp), welcome.Jobs, short(welcome.Fingerprint))
	}

	warm := &wireWarmups{client: client, local: map[string]*localWarm{}}
	for {
		var lease LeaseReply
		if err := client.Call("Farm.Lease", LeaseArgs{Fingerprint: fp}, &lease); err != nil {
			return err
		}
		switch {
		case lease.Done:
			return nil
		case lease.Wait:
			time.Sleep(leaseWaitBackoff)
			continue
		}
		if err := w.execute(client, welcome, jobs, warm, lease); err != nil {
			return err
		}
	}
}

// execute runs one leased job to completion (or abandonment) and reports
// the result. Only infrastructure failures return an error — a job whose
// simulation fails completes with that error in its result, exactly like
// the in-process pool.
func (w *Worker) execute(client *rpc.Client, welcome Welcome, jobs []runner.Job, warm *wireWarmups, lease LeaseReply) error {
	job := jobs[lease.Job]

	// Heartbeat for the lease while the job runs. lost flips when the
	// coordinator no longer recognizes the lease; the checkpoint drive
	// notices at its next slice boundary and abandons the job.
	var lost atomic.Bool
	stop := make(chan struct{})
	var hb sync.WaitGroup
	hb.Add(1)
	go func() {
		defer hb.Done()
		tick := time.NewTicker(welcome.LeaseTTL / 3)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				var r RenewReply
				if err := client.Call("Farm.Renew", RenewArgs{Job: lease.Job, Seq: lease.Seq}, &r); err != nil || !r.Held {
					lost.Store(true)
					return
				}
			}
		}
	}()
	defer func() {
		close(stop)
		hb.Wait()
	}()

	opts := runner.JobOptions{Warmups: warm}
	var hookErr error
	if welcome.CheckpointEvery > 0 && job.Measure != nil {
		opts.Drive = func(s *sim.System) (uint64, error) {
			return s.RunCheckpointed(welcome.CheckpointEvery, func(s *sim.System) error {
				if lost.Load() {
					return errAbandoned
				}
				m, err := s.Snapshot()
				if err != nil {
					return err
				}
				b, err := encodeMachine(m)
				if err != nil {
					return err
				}
				var r CheckpointReply
				if err := client.Call("Farm.Checkpoint", CheckpointArgs{
					Job: lease.Job, Seq: lease.Seq, Cycle: s.Cycle, Snapshot: b,
				}, &r); err != nil {
					return err
				}
				if !r.Held {
					return errAbandoned
				}
				if w.CheckpointHook != nil {
					if err := w.CheckpointHook(lease.Job, s.Cycle); err != nil {
						hookErr = err
						return errAbandoned
					}
				}
				return nil
			})
		}
	}
	if lease.Checkpoint != nil && job.Measure != nil {
		m, err := decodeMachine(lease.Checkpoint)
		if err != nil {
			// A checkpoint the coordinator validated should decode; if it
			// does not, the builds diverge — fatal, not per-job.
			return fmt.Errorf("farm: worker %s: resume checkpoint for job %d: %w", w.Name, lease.Job, err)
		}
		s, err := sim.Restore(m)
		if err != nil {
			return fmt.Errorf("farm: worker %s: resume checkpoint for job %d: %w", w.Name, lease.Job, err)
		}
		opts.Start = s
	}

	res := runner.RunJob(job, opts)
	if errors.Is(res.Err, errAbandoned) {
		if hookErr != nil {
			return hookErr // the injected fault: die, do not complete
		}
		return nil // lease lost; someone else owns the job now
	}
	var cr CompleteReply
	if err := client.Call("Farm.Complete", CompleteArgs{
		Job: lease.Job, Seq: lease.Seq, Result: toWire(res),
	}, &cr); err != nil {
		return err
	}
	// cr.Accepted false means the result was stale — already reassigned.
	// Nothing to do either way; the coordinator's copy is authoritative.
	return nil
}

// errAbandoned marks a job given up mid-drive because its lease was lost
// (or a fault hook fired). It surfaces as the RunJob error and is eaten
// by execute — never completed, never fatal by itself.
var errAbandoned = fmt.Errorf("farm: lease lost; job abandoned")

// localWarm memoizes one warmup key within a worker process, so the N
// jobs of one worker sharing a key cost one RPC fetch, not N.
type localWarm struct {
	once sync.Once
	snap *snapshot.Machine
	err  error
}

// wireWarmups is the worker's runner.WarmupSource: content-addressed
// fetch from the coordinator, with fleet-wide build deduplication (the
// first asker per key simulates the warmup once and uploads it) and a
// process-local memo in front.
type wireWarmups struct {
	client *rpc.Client

	mu    sync.Mutex
	local map[string]*localWarm
}

// Machine implements runner.WarmupSource over the wire.
func (ww *wireWarmups) Machine(key string, build func() (*sim.System, error)) (*snapshot.Machine, error) {
	ww.mu.Lock()
	lw, ok := ww.local[key]
	if !ok {
		lw = &localWarm{}
		ww.local[key] = lw
	}
	ww.mu.Unlock()
	lw.once.Do(func() {
		lw.snap, lw.err = ww.fetch(key, build)
	})
	return lw.snap, lw.err
}

// fetch polls the coordinator until the key resolves: download the
// snapshot, build it under a fleet-wide grant, or inherit the builder's
// error.
func (ww *wireWarmups) fetch(key string, build func() (*sim.System, error)) (*snapshot.Machine, error) {
	for {
		var r WarmupReply
		if err := ww.client.Call("Farm.Warmup", WarmupArgs{Key: key}, &r); err != nil {
			return nil, err
		}
		switch {
		case r.Error != "":
			return nil, fmt.Errorf("%s", r.Error)
		case r.Snapshot != nil:
			return decodeMachine(r.Snapshot)
		case r.Build:
			m, err := ww.build(key, build)
			if err != nil {
				return nil, err
			}
			return m, nil
		}
		time.Sleep(leaseWaitBackoff)
	}
}

// build simulates the warmup under this worker's grant and uploads it.
// The builder restores from its own uploaded snapshot like every other
// consumer (the in-process cache has the same property), so builder and
// fetcher jobs run their measured phases on byte-identical machines.
func (ww *wireWarmups) build(key string, build func() (*sim.System, error)) (*snapshot.Machine, error) {
	s, err := build()
	if err != nil {
		putErr := ww.client.Call("Farm.PutWarmup", PutWarmupArgs{Key: key, Error: err.Error()}, &struct{}{})
		if putErr != nil {
			return nil, putErr
		}
		return nil, err
	}
	m, err := s.Snapshot()
	if err != nil {
		return nil, err
	}
	b, err := encodeMachine(m)
	if err != nil {
		return nil, err
	}
	if err := ww.client.Call("Farm.PutWarmup", PutWarmupArgs{Key: key, Snapshot: b}, &struct{}{}); err != nil {
		return nil, err
	}
	return m, nil
}
